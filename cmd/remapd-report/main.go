// Command remapd-report regenerates every table and figure of the paper's
// evaluation at the chosen scale and prints them in EXPERIMENTS.md order.
// This is the one-command reproduction entry point:
//
//	remapd-report -scale quick              # minutes
//	remapd-report -scale standard           # the full six-model matrix (slow)
//	remapd-report -scale quick -dist 4      # same bytes, four worker processes
//	remapd-report -scale quick -listen :7433  # same bytes, elastic TCP fleet
//
// With -dist N the experiment cells fan out to N exec'd copies of this
// binary in -worker mode; with -listen they fan out to whatever workers
// dial in over TCP (-worker -connect host:7433), which may join and
// leave mid-report. Either way the report is byte-identical to the
// in-process run. -only restricts the report to named sections
// (comma-separated keys: fig4 fig5 fig6 fig7 fig8 bist noc area
// ablations).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"remapd/internal/cli"
	"remapd/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var opts cli.Options
	var (
		scale     = flag.String("scale", "quick", "quick or standard")
		ablations = flag.Bool("ablations", true, "include the design-choice ablations")
		csvDir    = flag.String("csv", "", "also write each figure's rows as CSV into this directory")
		only      = flag.String("only", "", "run only these comma-separated sections (fig4 fig5 fig6 fig7 fig8 bist noc area ablations); empty = all")
	)
	opts.Bind(flag.CommandLine)
	opts.BindGrid(flag.CommandLine)
	opts.BindDist(flag.CommandLine)
	opts.BindWorker(flag.CommandLine)
	flag.Parse()
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	// Ctrl-C cancels in-flight training cells at their next batch boundary
	// (worker processes drain their in-flight cell the same way).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if opts.Worker {
		// Worker mode: same binary, protocol loop instead of a report.
		if err := opts.ServeWorker(ctx, log.Printf); err != nil && ctx.Err() == nil {
			log.Fatal(err)
		}
		return
	}

	if addr, err := opts.StartDebug(); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		fmt.Printf("debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	wantAll := *only == ""
	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	sectionWanted := func(key string) bool { return wantAll || want[key] }

	writeCSV := func(name string, rows interface{}) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, rows); err != nil {
			log.Fatal(err)
		}
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "standard":
		s = experiments.StandardScale()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	prof, cleanup, err := opts.Apply(&s, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	reg := experiments.DefaultRegime()
	//lint:allow no-wall-clock operator-facing report timing; results are computed from seeds only
	start := time.Now()
	// section prints a header and, when profiling, closes the previous
	// section's harness phase and opens the new one — every section body
	// between two headers is one profiled phase.
	var stopPhase func()
	section := func(title string) {
		if stopPhase != nil {
			stopPhase()
			stopPhase = nil
		}
		if prof != nil {
			stopPhase = prof.StartPhase(title)
		}
		fmt.Printf("\n==== %s ====\n\n", title)
	}

	if sectionWanted("fig4") {
		section("Fig. 4 — BIST current vs fault count")
		rows4 := experiments.Fig4(4, 4, 50, 1)
		fmt.Print(experiments.FormatFig4(rows4))
		writeCSV("fig4", rows4)
	}

	if sectionWanted("fig5") {
		section("Fig. 5 — forward vs backward phase fault tolerance")
		f5 := s
		if *scale == "quick" {
			f5.Models = []string{"vgg11"}
		}
		rows5, err := experiments.Fig5(ctx, f5, reg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFig5(rows5))
		writeCSV("fig5", rows5)
	}

	if sectionWanted("fig6") {
		section("Fig. 6 — policy comparison under pre+post faults")
		rows6, err := experiments.Fig6(ctx, s, reg, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFig6(rows6))
		writeCSV("fig6", rows6)
	}

	if sectionWanted("fig7") {
		section("Fig. 7 — Remap-D post-deployment sweep")
		sweepModels := []string{"vgg19", "resnet12"}
		if *scale == "quick" {
			sweepModels = []string{"vgg11"}
		}
		rows7, err := experiments.Fig7(ctx, s, reg, sweepModels,
			[]float64{0.005, 0.03, 0.06}, []float64{0.01, 0.02, 0.04})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFig7(rows7))
		writeCSV("fig7", rows7)
	}

	if sectionWanted("fig8") {
		section("Fig. 8 — scalability (CIFAR-100-like, SVHN-like)")
		rows8, err := experiments.Fig8(ctx, s, reg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFig8(rows8))
		writeCSV("fig8", rows8)
	}

	if sectionWanted("bist") {
		section("BIST timing overhead (paper: 0.13%)")
		fmt.Print(experiments.FormatBISTOverhead(experiments.BISTTimingOverhead(50000, 19, 8)))
	}

	if sectionWanted("noc") {
		section("NoC remap overhead, 50-round Monte Carlo (paper: 0.22% / 0.36%)")
		fmt.Print(experiments.FormatNoCOverhead(experiments.NoCRemapOverhead(50, 2, 10, 42)))
	}

	if sectionWanted("area") {
		section("Area overheads (paper: BIST 0.61%, AN 6.3%, Remap-T-10% 10%)")
		rowsArea := experiments.AreaOverheads()
		fmt.Print(experiments.FormatArea(rowsArea))
		writeCSV("area", rowsArea)
	}

	if *ablations && sectionWanted("ablations") {
		model := s.Models[len(s.Models)-1]
		section("Ablation — Remap-D trigger threshold (" + model + ")")
		rt, err := experiments.AblationThreshold(ctx, s, reg, model, []float64{0.004, 0.01, 0.02, 0.05})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatThreshold(rt))

		section("Ablation — receiver selection (nearest vs random)")
		rr, err := experiments.AblationReceiverSelection(ctx, s, reg, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatReceiver(rr))

		section("Ablation — conductance coding scheme")
		rc, err := experiments.AblationCoding(ctx, s, reg, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatCoding(rc))

		section("Ablation — BIST estimate vs ground-truth density")
		rb, err := experiments.AblationBISTvsTruth(ctx, s, reg, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatBISTvsTruth(rb))
	}

	if stopPhase != nil {
		stopPhase()
	}
	if prof != nil {
		if err := prof.WriteJSON(opts.MetricsDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntelemetry and harness profile written to %s\n", opts.MetricsDir)
	}
	//lint:allow no-wall-clock operator-facing report timing; results are computed from seeds only
	fmt.Printf("\nreport complete in %s (scale=%s)\n", time.Since(start).Round(time.Second), s.Name)
}
