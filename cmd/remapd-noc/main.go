// Command remapd-noc runs the Section IV.C Monte-Carlo study of the remap
// handshake's performance overhead on the flit-level c-mesh NoC simulator,
// and demonstrates the Fig. 3 protocol on a single scenario.
package main

import (
	"flag"
	"fmt"
	"log"

	"remapd/internal/energy"
	"remapd/internal/experiments"
	"remapd/internal/noc"
	"remapd/internal/reram"
)

func main() {
	log.SetFlags(0)
	var (
		rounds    = flag.Int("rounds", 50, "Monte-Carlo rounds (paper: 50)")
		senders   = flag.Int("senders", 2, "sender tiles per round")
		receivers = flag.Int("receivers", 10, "potential receiver tiles per round")
		seed      = flag.Uint64("seed", 42, "seed")
		demo      = flag.Bool("demo", true, "also print a single-scenario protocol walkthrough")
		topology  = flag.Bool("topology", true, "compare plain mesh vs c-mesh")
		loadSweep = flag.Bool("load", false, "run the synthetic-traffic latency sweep")
	)
	flag.Parse()

	if *demo {
		fmt.Println("Fig. 3 protocol walkthrough (4×4 c-mesh, 64 tiles):")
		cfg := noc.DefaultConfig()
		pp := noc.DefaultProtocolParams()
		res := noc.SimulateRemap(cfg, pp, []int{5, 40}, []int{1, 20, 33, 50, 62})
		fmt.Printf("  requests broadcast and delivered by cycle %d\n", res.RequestDone)
		fmt.Printf("  responses collected by cycle %d\n", res.ResponseDone)
		for _, p := range res.Pairs {
			fmt.Printf("  sender tile %d ↔ receiver tile %d (%d hops)\n", p.Sender, p.Receiver, p.Hops)
		}
		fmt.Printf("  weight swaps complete at cycle %d (%d flit-hops total)\n\n", res.SwapDone, res.FlitHops)
	}

	fmt.Printf("Monte-Carlo overhead (%d rounds):\n", *rounds)
	row := experiments.NoCRemapOverhead(*rounds, *senders, *receivers, *seed)
	fmt.Print(experiments.FormatNoCOverhead(row))

	// Energy view of the same traffic (paper: < 0.5% power overhead).
	cfg := noc.DefaultConfig()
	pp := noc.DefaultProtocolParams()
	pp.WeightFlits = row.WeightFlits
	res := noc.SimulateRemap(cfg, pp, []int{5, 40}, []int{1, 20, 33, 50, 62})
	er := energy.PaperPointOverhead(reram.DefaultDeviceParams(), res.FlitHops, len(res.Pairs))
	fmt.Printf("\nEnergy (one representative round):\n%s", er.Format())

	if *topology {
		fmt.Println("\nTopology comparison (paper §III.B.1: c-mesh over mesh):")
		fmt.Print(noc.FormatTopologyComparison(noc.CompareTopologies(*seed)))
	}

	if *loadSweep {
		fmt.Println("\nSynthetic-traffic latency sweep (uniform random):")
		sweep := noc.LoadSweep(noc.DefaultConfig(), noc.UniformRandom,
			[]float64{0.02, 0.05, 0.10, 0.20, 0.30}, 500, *seed)
		fmt.Print(noc.FormatLoadStats(sweep))
	}
}
