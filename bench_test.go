// Benchmarks that regenerate every table and figure of the paper's
// evaluation (DESIGN.md §4 maps each benchmark to its experiment). The
// training-based figures run at a reduced "bench" scale so the whole suite
// finishes in CPU-minutes; cmd/remapd-report reproduces them at full scale.
//
// Run:
//
//	go test -bench=. -benchmem
package remapd_test

import (
	"context"
	"testing"

	"remapd/internal/experiments"
)

// benchScale is the reduced configuration used by the training benches.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.Name = "bench"
	s.TrainN, s.TestN = 320, 256
	s.Epochs = 4
	s.Models = []string{"vgg11"}
	s.Seeds = []uint64{1}
	return s
}

// BenchmarkFig4BISTCurrent regenerates Fig. 4: BIST column current vs the
// number of SA0/SA1 faults under device-resistance variation.
func BenchmarkFig4BISTCurrent(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(4, 4, 50, 1)
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFig4(rows))
		}
	}
}

// BenchmarkFig5PhaseTolerance regenerates Fig. 5: accuracy with faults
// injected only into forward-phase vs only into backward-phase crossbars.
func BenchmarkFig5PhaseTolerance(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	reg := experiments.DefaultRegime()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(context.Background(), s, reg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFig5(rows))
		}
	}
}

// BenchmarkFig6PolicyComparison regenerates Fig. 6: accuracy under
// combined pre+post faults for every fault-tolerance policy.
func BenchmarkFig6PolicyComparison(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	reg := experiments.DefaultRegime()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(context.Background(), s, reg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFig6(rows))
		}
	}
}

// BenchmarkFig7PostDeploymentSweep regenerates Fig. 7: Remap-D accuracy
// across the (m, n) post-deployment wear sweep.
func BenchmarkFig7PostDeploymentSweep(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	reg := experiments.DefaultRegime()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(context.Background(), s, reg, []string{"vgg11"},
			[]float64{0.005, 0.06}, []float64{0.01, 0.04})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFig7(rows))
		}
	}
}

// BenchmarkFig8Scalability regenerates Fig. 8: Remap-D vs no protection on
// the CIFAR-100-like and SVHN-like datasets.
func BenchmarkFig8Scalability(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	reg := experiments.DefaultRegime()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(context.Background(), s, reg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFig8(rows))
		}
	}
}

// BenchmarkFig6RunnerSmoke exercises the parallel experiment runner end to
// end: the Fig. 6 headline cells at bench scale fanned across 4 workers.
// CI runs this with -benchtime=1x as the training smoke test.
func BenchmarkFig6RunnerSmoke(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	s.Workers = 4
	reg := experiments.DefaultRegime()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(context.Background(), s, reg, []string{"ideal", "none", "remap-d"})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("rows %d", len(rows))
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFig6(rows))
		}
	}
}

// BenchmarkBISTTimingOverhead regenerates the 0.13% BIST timing claim.
func BenchmarkBISTTimingOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row := experiments.BISTTimingOverhead(50000, 19, 8)
		if i == 0 {
			b.Logf("\n%s", experiments.FormatBISTOverhead(row))
		}
	}
}

// BenchmarkNoCRemapOverhead regenerates the Section IV.C Monte-Carlo
// remap-traffic study (paper: 0.22% mean / 0.36% worst).
func BenchmarkNoCRemapOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row := experiments.NoCRemapOverhead(10, 2, 10, 42)
		if i == 0 {
			b.Logf("\n%s", experiments.FormatNoCOverhead(row))
		}
	}
}

// BenchmarkAreaOverhead regenerates the area table (BIST 0.61%, AN 6.3%,
// Remap-T-10% 10%).
func BenchmarkAreaOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.AreaOverheads()
		if i == 0 {
			b.Logf("\n%s", experiments.FormatArea(rows))
		}
	}
}

// BenchmarkAblationThreshold sweeps Remap-D's trigger threshold
// (DESIGN.md §6.3).
func BenchmarkAblationThreshold(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	reg := experiments.DefaultRegime()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationThreshold(context.Background(), s, reg, "vgg11", []float64{0.004, 0.02, 0.05})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatThreshold(rows))
		}
	}
}

// BenchmarkAblationReceiverSelection compares nearest vs random receiver
// selection (DESIGN.md §6.4).
func BenchmarkAblationReceiverSelection(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	reg := experiments.DefaultRegime()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationReceiverSelection(context.Background(), s, reg, "vgg11")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatReceiver(rows))
		}
	}
}

// BenchmarkAblationCoding compares offset (PytorX-style) and differential
// conductance coding (DESIGN.md §6.5).
func BenchmarkAblationCoding(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	reg := experiments.DefaultRegime()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationCoding(context.Background(), s, reg, "vgg11")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatCoding(rows))
		}
	}
}

// BenchmarkAblationBISTvsTruth compares BIST density estimates against
// ground truth as the remap trigger (DESIGN.md §6, BIST fidelity).
func BenchmarkAblationBISTvsTruth(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	reg := experiments.DefaultRegime()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBISTvsTruth(context.Background(), s, reg, "vgg11")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatBISTvsTruth(rows))
		}
	}
}

// BenchmarkWeightsWrittenNilRecorder pins the telemetry overhead contract
// on the matmul hot path: the per-step WeightsWritten notification with no
// Recorder attached must stay allocation-free (the disabled path is one
// nil check). Run with -benchmem; allocs/op must be 0.
func BenchmarkWeightsWrittenNilRecorder(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	net, err := experiments.BuildModel("cnn-s", s, 1, 10)
	if err != nil {
		b.Fatal(err)
	}
	chip := experiments.NewChip(s)
	if err := chip.MapNetwork(net); err != nil {
		b.Fatal(err)
	}
	layer := net.MVMLayers()[0]
	chip.WeightsWritten(layer) // warm the dirty-map entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.WeightsWritten(layer)
	}
}
