// Policy comparison (Fig. 6): train the same model under combined pre- and
// post-deployment faults with every fault-tolerance policy the paper
// evaluates, and print the accuracy table.
package main

import (
	"fmt"
	"log"

	"remapd"
)

func main() {
	log.SetFlags(0)
	scale := remapd.QuickScale()
	scale.TrainN, scale.Epochs = 384, 5
	regime := remapd.DefaultRegime()
	ds := remapd.CIFAR10Like(scale.TrainN, scale.TestN, scale.ImgSize, 77)

	fmt.Println("VGG-11 under clustered pre-deployment faults + per-epoch wear-out:")
	fmt.Printf("%-12s %9s %7s %10s\n", "policy", "accuracy", "swaps", "unmatched")
	for _, name := range remapd.PolicyNames() {
		net, err := remapd.BuildModel("vgg11", scale, 1, 10)
		if err != nil {
			log.Fatal(err)
		}
		cfg := remapd.DefaultTrainConfig()
		cfg.Epochs = scale.Epochs
		cfg.BatchSize = scale.BatchSize
		cfg.LR = scale.LR
		if name != "ideal" {
			policy, trackGrads, err := remapd.NewPolicy(name, regime)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Chip = remapd.NewChip(scale)
			cfg.Policy = policy
			cfg.Pre = &regime.Pre
			cfg.Post = &regime.Post
			cfg.TrackGradAbs = trackGrads
		}
		res, err := remapd.Train(net, ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9.3f %7d %10d\n", name, res.FinalTestAcc, res.Swaps, res.Unmatched)
	}
}
