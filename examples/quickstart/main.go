// Quickstart: train a small CNN from scratch on a faulty simulated ReRAM
// chip, first unprotected and then with the paper's Remap-D policy, and
// compare against the fault-free ideal. Runs in well under a minute.
package main

import (
	"fmt"
	"log"

	"remapd"
)

func main() {
	log.SetFlags(0)
	scale := remapd.QuickScale()
	regime := remapd.DefaultRegime()
	ds := remapd.CIFAR10Like(scale.TrainN, scale.TestN, scale.ImgSize, 77)
	fmt.Println(ds)

	scale.TrainN, scale.Epochs = 384, 5
	run := func(policyName string) *remapd.TrainResult {
		net, err := remapd.BuildModel("vgg11", scale, 1, 10)
		if err != nil {
			log.Fatal(err)
		}
		cfg := remapd.DefaultTrainConfig()
		cfg.Epochs = scale.Epochs
		cfg.BatchSize = scale.BatchSize
		cfg.LR = scale.LR

		if policyName != "ideal" {
			policy, trackGrads, err := remapd.NewPolicy(policyName, regime)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Chip = remapd.NewChip(scale)
			cfg.Policy = policy
			cfg.Pre = &regime.Pre
			cfg.Post = &regime.Post
			cfg.TrackGradAbs = trackGrads
		}
		res, err := remapd.Train(net, ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("\ntraining vgg11 three ways...")
	ideal := run("ideal")
	none := run("none")
	rd := run("remap-d")

	fmt.Printf("\n%-22s accuracy\n", "configuration")
	fmt.Printf("%-22s %.3f\n", "ideal (fault-free)", ideal.FinalTestAcc)
	fmt.Printf("%-22s %.3f\n", "faulty, no protection", none.FinalTestAcc)
	fmt.Printf("%-22s %.3f  (%d task swaps, %d BIST cycles)\n",
		"faulty, Remap-D", rd.FinalTestAcc, rd.Swaps, rd.BISTCyclesTotal)
}
