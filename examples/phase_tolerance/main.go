// Phase tolerance (Fig. 5): inject the same fault density into the
// crossbars executing the forward phase and, separately, into those
// executing the backward phase, and observe that the backward phase is far
// less fault tolerant — the observation Remap-D's priority rule is built
// on.
package main

import (
	"fmt"
	"log"

	"remapd"
	"remapd/internal/trainer"
)

func main() {
	log.SetFlags(0)
	scale := remapd.QuickScale()
	scale.TrainN, scale.Epochs = 384, 5
	regime := remapd.DefaultRegime()
	ds := remapd.CIFAR10Like(scale.TrainN, scale.TestN, scale.ImgSize, 77)

	run := func(phase string) float64 {
		net, err := remapd.BuildModel("vgg11", scale, 1, 10)
		if err != nil {
			log.Fatal(err)
		}
		cfg := remapd.DefaultTrainConfig()
		cfg.Epochs = scale.Epochs
		cfg.BatchSize = scale.BatchSize
		cfg.LR = scale.LR
		switch phase {
		case "forward":
			cfg.Chip = remapd.NewChip(scale)
			cfg.PhaseInject = &trainer.PhaseInjection{Phase: remapd.Forward, Density: regime.PhaseDensity}
		case "backward":
			cfg.Chip = remapd.NewChip(scale)
			cfg.PhaseInject = &trainer.PhaseInjection{Phase: remapd.Backward, Density: regime.PhaseDensity}
		}
		res, err := remapd.Train(net, ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.FinalTestAcc
	}

	fmt.Printf("VGG-11, %.1f%% stuck-at density injected per phase:\n\n", 100*regime.PhaseDensity)
	ideal := run("ideal")
	fwd := run("forward")
	bwd := run("backward")
	fmt.Printf("%-28s %.3f\n", "fault-free", ideal)
	fmt.Printf("%-28s %.3f\n", "faults in FORWARD phase", fwd)
	fmt.Printf("%-28s %.3f\n", "faults in BACKWARD phase", bwd)
	fmt.Printf("\nbackward phase less tolerant: %v (the paper's Section III.B.2 observation)\n", bwd < fwd)
}
