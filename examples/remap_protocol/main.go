// Remap protocol walkthrough (Fig. 3): run the three-phase remapping
// handshake — broadcast request, unicast responses, nearest-receiver
// weight swap — on the flit-level c-mesh NoC simulator and print what
// happens cycle by cycle, then show that parallel non-overlapping remaps
// cost barely more than one.
package main

import (
	"fmt"

	"remapd/internal/noc"
)

func main() {
	cfg := noc.DefaultConfig() // 4×4 routers, concentration 4 = 64 tiles
	pp := noc.DefaultProtocolParams()

	fmt.Printf("c-mesh NoC: %d×%d routers, %d tiles, %d-flit weight payloads\n\n",
		cfg.MeshX, cfg.MeshY, cfg.Tiles(), pp.WeightFlits)

	// Two faulty sender tiles, several willing receivers (Fig. 3 scenario).
	senders := []int{5, 40}
	receivers := []int{1, 20, 33, 50, 62}
	fmt.Printf("senders (faulty tiles):   %v\n", senders)
	fmt.Printf("potential receiver tiles: %v\n\n", receivers)

	for _, s := range senders {
		fmt.Printf("receivers by distance from sender %d:", s)
		for _, pr := range noc.NearestReceivers(cfg, s, receivers) {
			fmt.Printf("  %d(%dh)", pr.Receiver, pr.Hops)
		}
		fmt.Println()
	}

	res := noc.SimulateRemap(cfg, pp, senders, receivers)
	fmt.Printf("\nphase (a) broadcast requests delivered: cycle %d\n", res.RequestDone)
	fmt.Printf("phase (b) responses collected:          cycle %d\n", res.ResponseDone)
	fmt.Println("phase (c) nearest-receiver matching:")
	for _, p := range res.Pairs {
		fmt.Printf("   sender %d ↔ receiver %d  (%d hops)\n", p.Sender, p.Receiver, p.Hops)
	}
	fmt.Printf("weight exchange complete:               cycle %d\n", res.SwapDone)
	fmt.Printf("total link traversals (energy proxy):   %d flit-hops\n\n", res.FlitHops)

	// Parallelism: one pair vs two disjoint pairs.
	solo := noc.SimulateRemap(cfg, pp, []int{0}, []int{1})
	dual := noc.SimulateRemap(cfg, pp, []int{0, 63}, []int{1, 62})
	fmt.Printf("one remap pair:           %6d cycles\n", solo.TotalCycles)
	fmt.Printf("two disjoint remap pairs: %6d cycles (%.2f× — the NoC overlaps them)\n",
		dual.TotalCycles, float64(dual.TotalCycles)/float64(solo.TotalCycles))
}
