module remapd

go 1.22
